//! Deterministic test runner: seeded RNG and per-case failure
//! reporting (in place of the real crate's shrinking).

use std::cell::{Cell, RefCell};
use std::fmt::Debug;

/// How many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed derived from the test's name (FNV-1a), so every run of a
    /// given test generates the identical case sequence.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h ^ 0x9e37_79b9_7f4a_7c15)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Prints the failing case's inputs if the test body panics; the real
/// crate shrinks instead, but a deterministic seed means re-running
/// the named test replays the failure exactly.
pub struct CaseReporter {
    test: &'static str,
    case: u32,
    inputs: RefCell<Vec<(&'static str, String)>>,
    done: Cell<bool>,
}

impl CaseReporter {
    pub fn new(test: &'static str, case: u32) -> CaseReporter {
        CaseReporter {
            test,
            case,
            inputs: RefCell::new(Vec::new()),
            done: Cell::new(false),
        }
    }

    pub fn record(&self, name: &'static str, value: &dyn Debug) {
        self.inputs.borrow_mut().push((name, format!("{value:?}")));
    }

    pub fn passed(&self) {
        self.done.set(true);
    }
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if !self.done.get() && std::thread::panicking() {
            eprintln!(
                "proptest '{}' failed at case {} (seed is derived from the test name; \
                 re-running replays it):",
                self.test, self.case
            );
            for (name, value) in self.inputs.borrow().iter() {
                eprintln!("  {name} = {value}");
            }
        }
    }
}
