//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, bounded, Sender, Receiver}` is
//! provided, backed by `std::sync::mpsc`. Since Rust 1.72 the std
//! `Sender` is `Sync`, which covers every sharing pattern in this
//! workspace (senders stored in maps behind locks, receivers owned by
//! exactly one thread).

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned when the receiving side of a channel is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by a blocking `recv` on a disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Tx<T> {
            match self {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            }
        }
    }

    /// Sending half of a channel. Cloneable; blocks on a full bounded
    /// channel like the crossbeam original.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// A channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// A channel that holds at most `cap` in-flight messages; `send`
    /// blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_shared_sender() {
            let (tx, rx) = bounded(4);
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap())
                .join()
                .unwrap();
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort();
            assert_eq!(got, vec![1, 2]);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
