//! Observability chaos test (the `obs` feature): a seeded chaos run
//! with tracing on must produce per-rank span logs whose merged,
//! causally-ordered timeline — and whose metrics snapshot — replay
//! bit-for-bit from the same seed.
#![cfg(feature = "obs")]

use pardis_cdr::{CdrReader, Decode};
use pardis_core::prelude::*;
use pardis_net::FaultPlan;
use pardis_obs::timeline;
use pardis_obs::{SpanKind, SpanRecord};
use parking_lot::Mutex;

const OBJ_TYPE: &str = "IDL:chaos_sum:1.0";
const INVOCATIONS: usize = 8;
const KILL_AT: usize = 4;
const LEN: usize = 64;
const THREADS: usize = 2;
const SEED: u64 = 0x5EED_CAFE;

/// The recorder and metrics registries are process-global; tests in
/// this binary must not interleave runs.
static RUN_LOCK: Mutex<()> = Mutex::new(());

struct SumServant;

impl Servant for SumServant {
    fn type_id(&self) -> &str {
        OBJ_TYPE
    }

    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        let arr: pardis_core::DSequence<f64> = req.dist_seq(0)?;
        let local: f64 = arr.local_data().iter().sum();
        let total = req
            .ctx()
            .rts()
            .allreduce_f64(&[local], pardis_rts::ReduceOp::Sum)
            .map_err(PardisError::from)?[0];
        req.set_result(|w| {
            w.put_f64(total);
            Ok(())
        })
    }
}

/// One seeded chaos run (multi-port with frame drops and a mid-run
/// data-port kill). Returns the drained spans and the metrics
/// snapshot, leaving the global registries clean for the next run.
fn run_and_capture(seed: u64) -> (Vec<SpanRecord>, String) {
    let world = World::new(LinkSpec::unlimited());

    let server_opts = OrbOptions {
        frag_timeout: Some(std::time::Duration::from_millis(80)),
        ..Default::default()
    };
    let server = world.spawn_machine_with("server", THREADS, server_opts, |ctx| {
        ctx.register("example", Box::new(SumServant), vec![])
            .unwrap();
        ctx.serve_forever().unwrap();
    });

    let client = world.spawn_machine("client", THREADS, move |ctx| {
        let mut proxy = ctx
            .spmd_bind("example", Some("server"), Some(OBJ_TYPE))
            .unwrap();
        proxy.set_mode(TransferMode::MultiPort).unwrap();
        proxy.set_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: std::time::Duration::from_millis(2),
            ..RetryPolicy::default()
        });
        proxy.set_deadline(Some(std::time::Duration::from_millis(150)));

        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.host()
                .fabric()
                .install_faults(FaultPlan::new(seed).with_frame_drop(20_000));
        }
        ctx.rts().barrier();

        for i in 0..INVOCATIONS {
            if i == KILL_AT {
                ctx.rts().barrier();
                if ctx.is_comm_thread() {
                    let o = proxy.objref();
                    let dead = *o.data_ports.last().unwrap();
                    ctx.host().fabric().kill_port(o.host, dead);
                }
                ctx.rts().barrier();
            }

            let mut seq = DSequence::<f64>::new(ctx.rts(), LEN, None).unwrap();
            let off = seq.local_range().start;
            for (j, x) in seq.local_data_mut().iter_mut().enumerate() {
                *x = i as f64 + (off + j) as f64 * 0.25;
            }
            let mut spec = RequestSpec::simple("sum").idempotent();
            spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];

            if let Ok(reply) = proxy.invoke(&ctx, spec) {
                let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
                let _ = f64::decode(&mut r).unwrap();
            }
        }

        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.host().fabric().clear_faults();
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
    });

    client.join();
    server.join();

    let spans = pardis_obs::drain_all();
    let metrics = pardis_obs::snapshot_json();
    pardis_obs::reset();
    (spans, metrics)
}

#[test]
fn merged_timeline_replays_bit_for_bit() {
    let _g = RUN_LOCK.lock();
    let (spans_a, metrics_a) = run_and_capture(SEED);
    let (spans_b, metrics_b) = run_and_capture(SEED);

    assert!(!spans_a.is_empty(), "run recorded no spans");

    // Every phase of the taxonomy shows up in a faulty multi-port run:
    // bind, marshal, both transfer engines (the port kill demotes the
    // later invocations), dispatch, reply, invoke.
    for kind in [
        SpanKind::Bind,
        SpanKind::Marshal,
        SpanKind::XferCentralized,
        SpanKind::XferMultiport,
        SpanKind::Dispatch,
        SpanKind::Reply,
        SpanKind::Invoke,
    ] {
        assert!(
            spans_a.iter().any(|s| s.kind == kind),
            "no {} span recorded",
            kind.as_str()
        );
    }

    // The merged, causally-ordered projections are identical.
    let merged_a = timeline::render(&timeline::merge(spans_a));
    let merged_b = timeline::render(&timeline::merge(spans_b));
    assert!(!merged_a.is_empty());
    assert_eq!(
        merged_a, merged_b,
        "merged timeline diverged between replays"
    );

    // So is the metrics snapshot (volatile histograms export only
    // their deterministic counts).
    assert_eq!(metrics_a, metrics_b, "metrics snapshot diverged");
    assert!(metrics_a.contains("\"orb.requests\""));
    assert!(metrics_a.contains("\"orb.served\""));
}

#[test]
fn server_spans_parent_under_client_trace() {
    let _g = RUN_LOCK.lock();
    let (spans, _) = run_and_capture(SEED ^ 0x1234);

    // Service-context propagation: every server dispatch span names a
    // client trace and parents under that trace's root span (whose id
    // equals the trace id by construction); every reply span parents
    // under its rank's dispatch span.
    let dispatches: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Dispatch)
        .collect();
    assert!(!dispatches.is_empty(), "no dispatch spans recorded");
    for d in &dispatches {
        assert_eq!(d.machine, "server");
        assert_ne!(d.trace_id, 0);
        assert_eq!(d.parent_span, d.trace_id);
        assert!(
            spans
                .iter()
                .any(|s| s.kind == SpanKind::Invoke && s.span_id == d.trace_id),
            "dispatch span's trace {} has no client invoke root",
            d.trace_id
        );
    }
    for r in spans.iter().filter(|s| s.kind == SpanKind::Reply) {
        assert!(
            dispatches.iter().any(|d| d.span_id == r.parent_span),
            "reply span {} has no dispatch parent",
            r.span_id
        );
    }

    // The merged output reparses: the stable projection is itself a
    // valid span log (wait_ns defaults to 0).
    let merged = timeline::merge(spans);
    let rendered = timeline::render(&merged);
    let back = timeline::parse_log(&rendered).expect("merged timeline must reparse");
    assert_eq!(back.len(), merged.len());
}
