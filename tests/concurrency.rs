//! Concurrency behaviour of the ORB: multiple outstanding futures on
//! one binding, several client machines sharing one SPMD object, and
//! dedicated versus shared links.

use pardis::apps::diffusion::DiffusionServant;
use pardis::apps::vector::VectorServant;
use pardis::prelude::*;
use pardis::stubs::diffusion::{diff_objectProxy, diff_objectSkeleton};
use pardis::stubs::simulation::pardis_demo::{vector_serviceProxy, vector_serviceSkeleton};

#[test]
fn multiple_outstanding_futures_same_binding() {
    // Two non-blocking invocations in flight before either is waited
    // on; replies may arrive in either order and are matched by request
    // id in the proxy's reply buffer.
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("server", 2, |ctx| {
        vector_serviceSkeleton::register(&ctx, "v", VectorServant::new(), vec![]).unwrap();
        ctx.serve_forever().unwrap();
    });
    let client = world.spawn_machine("client", 2, |ctx| {
        let svc = vector_serviceProxy::_spmd_bind(&ctx, "v", None).unwrap();
        let mut a = DSequence::<f64>::new(ctx.rts(), 64, None).unwrap();
        let mut b = DSequence::<f64>::new(ctx.rts(), 64, None).unwrap();
        for x in a.local_data_mut() {
            *x = 2.0;
        }
        for x in b.local_data_mut() {
            *x = 3.0;
        }
        let f1 = svc.dot_nb(&ctx, &a, &a).unwrap();
        let f2 = svc.dot_nb(&ctx, &b, &b).unwrap();
        // Wait in reverse order of issue.
        let d2 = f2.wait().unwrap().ret;
        let d1 = f1.wait().unwrap().ret;
        assert_eq!(d1, 64.0 * 4.0);
        assert_eq!(d2, 64.0 * 9.0);
        if ctx.is_comm_thread() {
            ctx.send_shutdown(svc.proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn several_client_machines_share_one_object() {
    // Three client machines (different sizes) hammer one SPMD object
    // concurrently; the request port serializes invocations and every
    // client gets its own answers back.
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("server", 3, |ctx| {
        diff_objectSkeleton::register(&ctx, "diff", DiffusionServant::new(), vec![]).unwrap();
        ctx.serve_forever().unwrap();
    });
    let mut clients = Vec::new();
    for (name, threads, fill) in [("c1", 1usize, 1.0f64), ("c2", 2, 2.0), ("c3", 4, 3.0)] {
        clients.push(world.spawn_machine(name, threads, move |ctx| {
            let diff = diff_objectProxy::_spmd_bind(&ctx, "diff", None).unwrap();
            for round in 0..5 {
                let len = 60 + round * 12;
                let mut arr = DSequence::<f64>::new(ctx.rts(), len, None).unwrap();
                for x in arr.local_data_mut() {
                    *x = fill;
                }
                let heat = diff.total_heat(&ctx, &arr).unwrap();
                assert_eq!(heat, fill * len as f64, "{name} round {round}");
            }
        }));
    }
    for c in clients {
        c.join();
    }
    // Shut down via a fresh one-thread client.
    let closer = world.spawn_machine("closer", 1, |ctx| {
        let diff = diff_objectProxy::_bind(&ctx, "diff", None).unwrap();
        ctx.send_shutdown(diff.proxy.objref()).unwrap();
    });
    closer.join();
    server.join();
}

#[test]
fn mixed_modes_interleaved_on_one_server() {
    // Alternate centralized and multi-port invocations against the same
    // object; fragment buffering must never confuse the two paths.
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("server", 4, |ctx| {
        diff_objectSkeleton::register(&ctx, "diff", DiffusionServant::new(), vec![]).unwrap();
        ctx.serve_forever().unwrap();
    });
    let client = world.spawn_machine("client", 3, |ctx| {
        let mut diff = diff_objectProxy::_spmd_bind(&ctx, "diff", None).unwrap();
        for round in 0..6 {
            let mode = if round % 2 == 0 {
                TransferMode::Centralized
            } else {
                TransferMode::MultiPort
            };
            diff._set_transfer_mode(mode).unwrap();
            let mut arr = DSequence::<f64>::new(ctx.rts(), 90 + round, None).unwrap();
            for x in arr.local_data_mut() {
                *x = 1.0;
            }
            diff.diffusion(&ctx, 1, &mut arr).unwrap();
            let heat = diff.total_heat(&ctx, &arr).unwrap();
            assert!((heat - (90 + round) as f64).abs() < 1e-9, "round {round}");
        }
        if ctx.is_comm_thread() {
            ctx.send_shutdown(diff.proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn dedicated_links_beat_a_shared_one() {
    // Topology matters: two client machines pushing bulk data to two
    // servers finish faster over dedicated per-pair links than over one
    // shared medium.
    use pardis_net::{Fabric, LinkSpec};
    use std::time::Instant;

    let payload = 600_000usize; // ~33 ms of wire at 18 MB/s
    let spec = LinkSpec {
        bandwidth: Some(18.0e6),
        latency: std::time::Duration::ZERO,
        mtu: 9180,
        per_frame_overhead: 0,
    };

    let run = |dedicated: bool| -> std::time::Duration {
        let fabric = if dedicated {
            Fabric::new()
        } else {
            Fabric::shared_link(spec)
        };
        let a1 = fabric.add_host("a1");
        let a2 = fabric.add_host("a2");
        let b1 = fabric.add_host("b1");
        let b2 = fabric.add_host("b2");
        if dedicated {
            fabric.connect(a1.id(), b1.id(), spec);
            fabric.connect(a2.id(), b2.id(), spec);
        }
        let p1 = b1.open_port();
        let p2 = b2.open_port();
        let t0 = Instant::now();
        let send1 = {
            let a1 = a1.clone();
            let to = (b1.id(), p1.port());
            std::thread::spawn(move || {
                a1.send_to(to.0, to.1, bytes::Bytes::from(vec![0u8; payload]))
                    .unwrap();
            })
        };
        let send2 = {
            let a2 = a2.clone();
            let to = (b2.id(), p2.port());
            std::thread::spawn(move || {
                a2.send_to(to.0, to.1, bytes::Bytes::from(vec![0u8; payload]))
                    .unwrap();
            })
        };
        send1.join().unwrap();
        send2.join().unwrap();
        p1.recv().unwrap();
        p2.recv().unwrap();
        t0.elapsed()
    };

    let shared = run(false);
    let dedicated = run(true);
    assert!(
        dedicated.as_secs_f64() < shared.as_secs_f64() * 0.75,
        "dedicated {dedicated:?} should be well under shared {shared:?}"
    );
}
