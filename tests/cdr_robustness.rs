//! Decode robustness: a malformed wire buffer must produce `Err`,
//! never a panic and never a bogus `Ok`.
//!
//! Three sources of malformation are exercised: systematic truncation
//! (every prefix of a valid message), systematic single-byte flips
//! (every offset of a valid message), and misalignment (valid bytes at
//! the wrong offset). A final test feeds real corrupted frames through
//! the fault-injecting fabric, closing the loop with the chaos
//! machinery: the exact damage the [`pardis_net::FaultPlan`] inflicts
//! is the damage the decoders must survive.

use bytes::Bytes;
use pardis_cdr::Endian;
use pardis_core::request::{ReplyBody, RequestBody};
use pardis_net::fault::PER_MILLION;
use pardis_net::giop::{
    GiopMessage, ReplyHeader, ReplyStatus, RequestHeader, TransferHeader, TransferMode,
};
use pardis_net::{Fabric, FaultPlan, HostId, LinkSpec};

fn sample_request(endian: Endian) -> Bytes {
    let body = RequestBody {
        nondist: Bytes::from_static(b"\x01\x02\x03\x04"),
        dist: vec![],
    };
    let header = RequestHeader {
        request_id: 7,
        object_name: "diffusion".into(),
        operation: "step".into(),
        response_expected: true,
        reply_host: HostId(0),
        reply_port: 3,
        mode: TransferMode::Centralized,
        client_threads: 4,
        client_data_ports: vec![5, 6, 7, 8],
        service_context: vec![],
    };
    GiopMessage::Request(header, body.to_bytes(endian))
        .encode(endian)
        .unwrap()
}

fn sample_reply(endian: Endian) -> Bytes {
    let body = ReplyBody {
        nondist: Bytes::from_static(b"\x09\x08"),
        dist_out: vec![(0, 128, Some(Bytes::from(vec![0xAB; 64])))],
    };
    GiopMessage::Reply(
        ReplyHeader {
            request_id: 7,
            status: ReplyStatus::NoException,
        },
        body.to_bytes(endian),
    )
    .encode(endian)
    .unwrap()
}

fn sample_transfer(endian: Endian) -> Bytes {
    GiopMessage::DataTransfer(
        TransferHeader {
            request_id: 7,
            arg_index: 1,
            src_thread: 2,
            dst_thread: 3,
            offset: 32,
            count: 8,
            total_len: 256,
            epoch: 0,
        },
        Bytes::from(vec![0x5A; 64]),
    )
    .encode(endian)
    .unwrap()
}

/// Try the full decode pipeline on one buffer: frame decode, then the
/// matching body decode. Returns whether everything decoded. The point
/// of calling it on damaged buffers is that it must return, not panic.
fn decode_pipeline(buf: &Bytes) -> bool {
    let endian = match GiopMessage::body_endian(buf) {
        Ok(e) => e,
        Err(_) => return false,
    };
    match GiopMessage::decode(buf) {
        Ok(GiopMessage::Request(_, body)) => RequestBody::decode(&body, endian).is_ok(),
        Ok(GiopMessage::Reply(_, body)) => ReplyBody::decode(&body, endian).is_ok(),
        Ok(_) => true,
        Err(_) => false,
    }
}

#[test]
fn every_truncation_errs_never_panics() {
    for endian in [Endian::Big, Endian::Little] {
        for wire in [
            sample_request(endian),
            sample_reply(endian),
            sample_transfer(endian),
        ] {
            for len in 0..wire.len() {
                let cut = wire.slice(..len);
                assert!(
                    !decode_pipeline(&cut) || len == wire.len(),
                    "truncated buffer ({len}/{} bytes) decoded Ok",
                    wire.len()
                );
            }
            // The intact message still decodes.
            assert!(decode_pipeline(&wire));
        }
    }
}

#[test]
fn every_single_byte_flip_is_survived() {
    for endian in [Endian::Big, Endian::Little] {
        for wire in [
            sample_request(endian),
            sample_reply(endian),
            sample_transfer(endian),
        ] {
            for pos in 0..wire.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut damaged = wire.to_vec();
                    damaged[pos] ^= flip;
                    // Either verdict is acceptable (a flipped payload
                    // byte is undetectable); what matters is that the
                    // decoder returns instead of panicking or
                    // over-allocating on a wild length field.
                    let _ = decode_pipeline(&Bytes::from(damaged));
                }
            }
        }
    }
}

#[test]
fn misaligned_buffers_err() {
    for endian in [Endian::Big, Endian::Little] {
        let wire = sample_request(endian);
        // Leading garbage shifts every length field off its slot.
        for pad in 1..8usize {
            let mut shifted = vec![0xEEu8; pad];
            shifted.extend_from_slice(&wire);
            assert!(
                !decode_pipeline(&Bytes::from(shifted)),
                "misaligned buffer (pad {pad}) decoded Ok"
            );
        }
        // Tail garbage after a valid frame must not be silently eaten.
        let mut padded = wire.to_vec();
        padded.extend_from_slice(&[0xEE; 7]);
        let _ = decode_pipeline(&Bytes::from(padded));
    }
}

#[test]
fn body_decoders_survive_garbage() {
    // Feed raw garbage straight to the body decoders (the frame layer
    // normally shields them; a corrupted frame does not).
    for seed in 0u8..=63 {
        let garbage: Vec<u8> = (0..97u8)
            .map(|i| i.wrapping_mul(31).wrapping_add(seed))
            .collect();
        let b = Bytes::from(garbage);
        for endian in [Endian::Big, Endian::Little] {
            let _ = RequestBody::decode(&b, endian);
            let _ = ReplyBody::decode(&b, endian);
        }
        let _ = GiopMessage::decode(&b);
    }
}

#[test]
fn fault_injected_corruption_never_panics_decoders() {
    // Close the loop with the chaos fabric: every frame corrupted, and
    // the decode pipeline must classify each damaged delivery as Err or
    // (for payload-byte flips) a well-formed Ok — no panics, no hangs.
    let fabric = Fabric::shared_link(LinkSpec::default());
    let a = fabric.add_host("A");
    let b = fabric.add_host("B");
    let port = b.open_port();
    fabric.install_faults(FaultPlan::new(0xC0FFEE).with_frame_corruption(PER_MILLION));

    let mut delivered = 0u32;
    let mut rejected = 0u32;
    for i in 0..200u64 {
        let endian = if i % 2 == 0 {
            Endian::Big
        } else {
            Endian::Little
        };
        let wire = match i % 3 {
            0 => sample_request(endian),
            1 => sample_reply(endian),
            _ => sample_transfer(endian),
        };
        a.send_to(b.id(), port.port(), wire).unwrap();
        let dg = port.recv().unwrap();
        delivered += 1;
        if !decode_pipeline(&dg.payload) {
            rejected += 1;
        }
    }
    let stats = fabric.fault_stats().unwrap();
    assert_eq!(stats.messages_corrupted as u32, delivered);
    // One flipped byte lands in a header/length field often enough that
    // a meaningful share of deliveries must be rejected.
    assert!(
        rejected > 20,
        "only {rejected}/200 corrupted messages were rejected"
    );
}
