//! Chaos test: a parallel client keeps invoking a parallel SPMD server
//! while a seeded [`FaultPlan`] drops frames and a server data port is
//! killed mid-run. The invocation deadlines, bounded retry, and the
//! multi-port → centralized fallback must carry all 100 invocations to
//! completion — and because every fault decision is a pure function of
//! `(seed, flow, counter)`, an entire run's observable outcome (drop
//! counts, retry counts, fallback counts, per-invocation results) must
//! replay bit-for-bit from the same seed.

use pardis_cdr::{CdrReader, Decode};
use pardis_core::prelude::*;
use pardis_net::FaultPlan;

const OBJ_TYPE: &str = "IDL:chaos_sum:1.0";
const INVOCATIONS: usize = 100;
const KILL_AT: usize = 50;
const LEN: usize = 64;
const SERVER_THREADS: usize = 2;
const CLIENT_THREADS: usize = 2;
const SEED: u64 = 0x5EED_CAFE;

/// `sum(in dsequence<double>) -> double`: each server thread sums its
/// local part, an allreduce produces the total. Pure, hence idempotent —
/// safe to re-execute on retry.
struct SumServant;

impl Servant for SumServant {
    fn type_id(&self) -> &str {
        OBJ_TYPE
    }

    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        match req.operation() {
            "sum" => {
                let arr: pardis_core::DSequence<f64> = req.dist_seq(0)?;
                let local: f64 = arr.local_data().iter().sum();
                let total = req
                    .ctx()
                    .rts()
                    .allreduce_f64(&[local], pardis_rts::ReduceOp::Sum)
                    .map_err(PardisError::from)?[0];
                req.set_result(|w| {
                    w.put_f64(total);
                    Ok(())
                })
            }
            other => Err(PardisError::BadOperation(other.to_string())),
        }
    }
}

/// Everything one client thread observed; compared across replays.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ClientReport {
    /// Per-invocation outcome (true = resolved Ok).
    ok: Vec<bool>,
    /// Bit patterns of the returned sums, in invocation order.
    sums_bits: Vec<u64>,
    /// Collective retry rounds this proxy went through.
    retries: u64,
    /// Multi-port requests demoted to centralized transfer.
    fallbacks: u64,
    /// Fault counters, observed by the communicating thread only:
    /// (frames_dropped, messages_dropped, connection_resets,
    /// dead_port_hits).
    stats: Option<(u64, u64, u64, u64)>,
}

/// One full chaos run. Returns every client thread's report plus each
/// server thread's corrupt-datagram skip count.
fn run_chaos(seed: u64) -> (Vec<ClientReport>, Vec<u64>) {
    let world = World::new(LinkSpec::unlimited());

    // The server bounds its fragment waits: a request whose data frames
    // were dropped degrades to an error reply instead of wedging the
    // serve loop (the client then retries).
    let server_opts = OrbOptions {
        frag_timeout: Some(std::time::Duration::from_millis(80)),
        ..Default::default()
    };
    let server = world.spawn_machine_with("server", SERVER_THREADS, server_opts, |ctx| {
        ctx.register("example", Box::new(SumServant), vec![])
            .unwrap();
        ctx.serve_forever().unwrap();
        ctx.serve_decode_errors()
    });

    let client = world.spawn_machine("client", CLIENT_THREADS, move |ctx| {
        let mut proxy = ctx
            .spmd_bind("example", Some("server"), Some(OBJ_TYPE))
            .unwrap();
        proxy.set_mode(TransferMode::MultiPort).unwrap();
        proxy.set_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: std::time::Duration::from_millis(2),
            ..RetryPolicy::default()
        });
        proxy.set_deadline(Some(std::time::Duration::from_millis(150)));

        // Faults go live only after the (clean) bind, installed once.
        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.host()
                .fabric()
                .install_faults(FaultPlan::new(seed).with_frame_drop(20_000)); // 2%
        }
        ctx.rts().barrier();

        let mut ok = Vec::with_capacity(INVOCATIONS);
        let mut sums_bits = Vec::new();
        for i in 0..INVOCATIONS {
            if i == KILL_AT {
                // Kill the last server thread's data port at a point
                // where no invocation is in flight. Every multi-port
                // request from here on must probe, notice the dead
                // port, and fall back to centralized transfer.
                ctx.rts().barrier();
                if ctx.is_comm_thread() {
                    let o = proxy.objref();
                    let dead = *o.data_ports.last().unwrap();
                    ctx.host().fabric().kill_port(o.host, dead);
                }
                ctx.rts().barrier();
            }

            let mut seq = DSequence::<f64>::new(ctx.rts(), LEN, None).unwrap();
            let off = seq.local_range().start;
            for (j, x) in seq.local_data_mut().iter_mut().enumerate() {
                *x = i as f64 + (off + j) as f64 * 0.25;
            }
            let mut spec = RequestSpec::simple("sum").idempotent();
            spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];

            match proxy.invoke(&ctx, spec) {
                Ok(reply) => {
                    let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
                    let got = f64::decode(&mut r).unwrap();
                    let want = LEN as f64 * i as f64 + 0.25 * (LEN * (LEN - 1) / 2) as f64;
                    assert!(
                        (got - want).abs() < 1e-9,
                        "invocation {i} returned {got}, want {want}"
                    );
                    ok.push(true);
                    sums_bits.push(got.to_bits());
                }
                Err(e) => {
                    // Exhausted retries must surface as a typed
                    // communication error, not a hang or a panic.
                    assert!(
                        matches!(
                            e,
                            PardisError::Timeout
                                | PardisError::CommFailure(_)
                                | PardisError::SystemException(_)
                        ),
                        "invocation {i}: unexpected error class: {e}"
                    );
                    ok.push(false);
                }
            }
        }

        // Quiesce, then read the fault counters and shut down over a
        // clean fabric (a dropped shutdown would strand the server).
        ctx.rts().barrier();
        let stats = if ctx.is_comm_thread() {
            let fabric = ctx.host().fabric();
            let s = fabric.fault_stats().unwrap();
            fabric.clear_faults();
            ctx.send_shutdown(proxy.objref()).unwrap();
            Some((
                s.frames_dropped,
                s.messages_dropped,
                s.connection_resets,
                s.dead_port_hits,
            ))
        } else {
            None
        };
        ClientReport {
            ok,
            sums_bits,
            retries: proxy.retry_count(),
            fallbacks: proxy.fallback_count(),
            stats,
        }
    });

    let reports = client.join();
    let decode_errors = server.join();
    (reports, decode_errors)
}

#[test]
fn chaos_replays_bit_for_bit_from_one_seed() {
    let (r1, d1) = run_chaos(SEED);
    let (r2, d2) = run_chaos(SEED);
    let (r3, d3) = run_chaos(SEED);

    // Three runs of the same seed: identical drop counts, retry
    // counts, fallback counts, and per-invocation results.
    assert_eq!(r1, r2, "run 2 diverged from run 1");
    assert_eq!(r2, r3, "run 3 diverged from run 2");
    assert_eq!(d1, d2);
    assert_eq!(d2, d3);

    // The chaos was real and the recovery machinery really ran.
    let comm = r1.iter().find(|r| r.stats.is_some()).unwrap();
    let (frames_dropped, messages_dropped, _, _) = comm.stats.unwrap();
    assert!(messages_dropped > 0, "plan injected no drops");
    assert!(frames_dropped >= messages_dropped);
    assert!(
        comm.retries > 0,
        "{messages_dropped} messages dropped but no invocation retried"
    );
    // Every post-kill invocation (at least) demoted to centralized.
    for r in &r1 {
        assert!(
            r.fallbacks >= INVOCATIONS.saturating_sub(KILL_AT) as u64,
            "only {} fallbacks recorded",
            r.fallbacks
        );
    }
    // Retry carried the overwhelming majority of invocations through.
    let succeeded = comm.ok.iter().filter(|&&b| b).count();
    assert!(
        succeeded >= INVOCATIONS * 9 / 10,
        "only {succeeded}/{INVOCATIONS} invocations completed"
    );

    // Collective agreement: all client threads saw identical outcomes
    // and identical recovery counters.
    for r in &r1 {
        assert_eq!(r.ok, r1[0].ok);
        assert_eq!(r.sums_bits, r1[0].sums_bits);
        assert_eq!(r.retries, r1[0].retries);
        assert_eq!(r.fallbacks, r1[0].fallbacks);
    }
}

#[test]
fn different_seed_schedules_different_chaos() {
    let (r1, _) = run_chaos(SEED);
    let (r2, _) = run_chaos(SEED ^ 0xFFFF);
    let s1 = r1.iter().find_map(|r| r.stats).unwrap();
    let s2 = r2.iter().find_map(|r| r.stats).unwrap();
    assert_ne!(
        (s1, r1[0].retries),
        (s2, r2[0].retries),
        "two seeds produced identical fault schedules"
    );
}
