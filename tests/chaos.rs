//! Chaos test: a parallel client keeps invoking a parallel SPMD server
//! while a seeded [`FaultPlan`] drops frames and a server data port is
//! killed mid-run. The invocation deadlines, bounded retry, and the
//! multi-port → centralized fallback must carry all 100 invocations to
//! completion — and because every fault decision is a pure function of
//! `(seed, flow, counter)`, an entire run's observable outcome (drop
//! counts, retry counts, fallback counts, per-invocation results) must
//! replay bit-for-bit from the same seed.

use pardis_cdr::{CdrReader, Decode};
use pardis_core::prelude::*;
use pardis_net::FaultPlan;

const OBJ_TYPE: &str = "IDL:chaos_sum:1.0";
const INVOCATIONS: usize = 100;
const KILL_AT: usize = 50;
const LEN: usize = 64;
const SERVER_THREADS: usize = 2;
const CLIENT_THREADS: usize = 2;
const SEED: u64 = 0x5EED_CAFE;

/// `sum(in dsequence<double>) -> double`: each server thread sums its
/// local part, an allreduce produces the total. Pure, hence idempotent —
/// safe to re-execute on retry.
struct SumServant;

impl Servant for SumServant {
    fn type_id(&self) -> &str {
        OBJ_TYPE
    }

    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        match req.operation() {
            "sum" => {
                let arr: pardis_core::DSequence<f64> = req.dist_seq(0)?;
                let local: f64 = arr.local_data().iter().sum();
                let total = req
                    .ctx()
                    .rts()
                    .allreduce_f64(&[local], pardis_rts::ReduceOp::Sum)
                    .map_err(PardisError::from)?[0];
                req.set_result(|w| {
                    w.put_f64(total);
                    Ok(())
                })
            }
            other => Err(PardisError::BadOperation(other.to_string())),
        }
    }
}

/// Everything one client thread observed; compared across replays.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ClientReport {
    /// Per-invocation outcome (true = resolved Ok).
    ok: Vec<bool>,
    /// Bit patterns of the returned sums, in invocation order.
    sums_bits: Vec<u64>,
    /// Collective retry rounds this proxy went through.
    retries: u64,
    /// Multi-port requests demoted to centralized transfer.
    fallbacks: u64,
    /// Fault counters, observed by the communicating thread only:
    /// (frames_dropped, messages_dropped, connection_resets,
    /// dead_port_hits).
    stats: Option<(u64, u64, u64, u64)>,
}

/// One full chaos run. Returns every client thread's report plus each
/// server thread's corrupt-datagram skip count.
fn run_chaos(seed: u64) -> (Vec<ClientReport>, Vec<u64>) {
    let world = World::new(LinkSpec::unlimited());

    // The server bounds its fragment waits: a request whose data frames
    // were dropped degrades to an error reply instead of wedging the
    // serve loop (the client then retries).
    let server_opts = OrbOptions {
        frag_timeout: Some(std::time::Duration::from_millis(80)),
        ..Default::default()
    };
    let server = world.spawn_machine_with("server", SERVER_THREADS, server_opts, |ctx| {
        ctx.register("example", Box::new(SumServant), vec![])
            .unwrap();
        ctx.serve_forever().unwrap();
        ctx.serve_decode_errors()
    });

    let client = world.spawn_machine("client", CLIENT_THREADS, move |ctx| {
        let mut proxy = ctx
            .spmd_bind("example", Some("server"), Some(OBJ_TYPE))
            .unwrap();
        proxy.set_mode(TransferMode::MultiPort).unwrap();
        proxy.set_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: std::time::Duration::from_millis(2),
            ..RetryPolicy::default()
        });
        proxy.set_deadline(Some(std::time::Duration::from_millis(150)));

        // Faults go live only after the (clean) bind, installed once.
        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.host()
                .fabric()
                .install_faults(FaultPlan::new(seed).with_frame_drop(20_000)); // 2%
        }
        ctx.rts().barrier();

        let mut ok = Vec::with_capacity(INVOCATIONS);
        let mut sums_bits = Vec::new();
        for i in 0..INVOCATIONS {
            if i == KILL_AT {
                // Kill the last server thread's data port at a point
                // where no invocation is in flight. Every multi-port
                // request from here on must probe, notice the dead
                // port, and fall back to centralized transfer.
                ctx.rts().barrier();
                if ctx.is_comm_thread() {
                    let o = proxy.objref();
                    let dead = *o.data_ports.last().unwrap();
                    ctx.host().fabric().kill_port(o.host, dead);
                }
                ctx.rts().barrier();
            }

            let mut seq = DSequence::<f64>::new(ctx.rts(), LEN, None).unwrap();
            let off = seq.local_range().start;
            for (j, x) in seq.local_data_mut().iter_mut().enumerate() {
                *x = i as f64 + (off + j) as f64 * 0.25;
            }
            let mut spec = RequestSpec::simple("sum").idempotent();
            spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];

            match proxy.invoke(&ctx, spec) {
                Ok(reply) => {
                    let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
                    let got = f64::decode(&mut r).unwrap();
                    let want = LEN as f64 * i as f64 + 0.25 * (LEN * (LEN - 1) / 2) as f64;
                    assert!(
                        (got - want).abs() < 1e-9,
                        "invocation {i} returned {got}, want {want}"
                    );
                    ok.push(true);
                    sums_bits.push(got.to_bits());
                }
                Err(e) => {
                    // Exhausted retries must surface as a typed
                    // communication error, not a hang or a panic.
                    assert!(
                        matches!(
                            e,
                            PardisError::Timeout
                                | PardisError::CommFailure(_)
                                | PardisError::SystemException(_)
                        ),
                        "invocation {i}: unexpected error class: {e}"
                    );
                    ok.push(false);
                }
            }
        }

        // Quiesce, then read the fault counters and shut down over a
        // clean fabric (a dropped shutdown would strand the server).
        ctx.rts().barrier();
        let stats = if ctx.is_comm_thread() {
            let fabric = ctx.host().fabric();
            let s = fabric.fault_stats().unwrap();
            fabric.clear_faults();
            ctx.send_shutdown(proxy.objref()).unwrap();
            Some((
                s.frames_dropped,
                s.messages_dropped,
                s.connection_resets,
                s.dead_port_hits,
            ))
        } else {
            None
        };
        ClientReport {
            ok,
            sums_bits,
            retries: proxy.retry_count(),
            fallbacks: proxy.fallback_count(),
            stats,
        }
    });

    let reports = client.join();
    let decode_errors = server.join();
    (reports, decode_errors)
}

#[test]
fn chaos_replays_bit_for_bit_from_one_seed() {
    let (r1, d1) = run_chaos(SEED);
    let (r2, d2) = run_chaos(SEED);
    let (r3, d3) = run_chaos(SEED);

    // Three runs of the same seed: identical drop counts, retry
    // counts, fallback counts, and per-invocation results.
    assert_eq!(r1, r2, "run 2 diverged from run 1");
    assert_eq!(r2, r3, "run 3 diverged from run 2");
    assert_eq!(d1, d2);
    assert_eq!(d2, d3);

    // The chaos was real and the recovery machinery really ran.
    let comm = r1.iter().find(|r| r.stats.is_some()).unwrap();
    let (frames_dropped, messages_dropped, _, _) = comm.stats.unwrap();
    assert!(messages_dropped > 0, "plan injected no drops");
    assert!(frames_dropped >= messages_dropped);
    assert!(
        comm.retries > 0,
        "{messages_dropped} messages dropped but no invocation retried"
    );
    // Every post-kill invocation (at least) demoted to centralized.
    for r in &r1 {
        assert!(
            r.fallbacks >= INVOCATIONS.saturating_sub(KILL_AT) as u64,
            "only {} fallbacks recorded",
            r.fallbacks
        );
    }
    // Retry carried the overwhelming majority of invocations through.
    let succeeded = comm.ok.iter().filter(|&&b| b).count();
    assert!(
        succeeded >= INVOCATIONS * 9 / 10,
        "only {succeeded}/{INVOCATIONS} invocations completed"
    );

    // Collective agreement: all client threads saw identical outcomes
    // and identical recovery counters.
    for r in &r1 {
        assert_eq!(r.ok, r1[0].ok);
        assert_eq!(r.sums_bits, r1[0].sums_bits);
        assert_eq!(r.retries, r1[0].retries);
        assert_eq!(r.fallbacks, r1[0].fallbacks);
    }
}

#[test]
fn different_seed_schedules_different_chaos() {
    let (r1, _) = run_chaos(SEED);
    let (r2, _) = run_chaos(SEED ^ 0xFFFF);
    let s1 = r1.iter().find_map(|r| r.stats).unwrap();
    let s2 = r2.iter().find_map(|r| r.stats).unwrap();
    assert_ne!(
        (s1, r1[0].retries),
        (s2, r2[0].retries),
        "two seeds produced identical fault schedules"
    );
}

// ---------------------------------------------------------------------
// Thread-death chaos: a scheduled `ThreadDeath` fault kills one server
// computing thread immediately before it serves its `at_step`-th
// request. The degradation policy decides what happens to the
// invocations that follow: `Survivors` remaps the distributed argument
// onto the remaining threads and completes them, `FailFast` refuses
// them with a typed `MembershipChange`. Either way the whole run is a
// pure function of the seeded plan and must replay bit-for-bit.
// ---------------------------------------------------------------------

const D_SERVER_THREADS: usize = 4;
const D_INVOCATIONS: usize = 8;
/// Server serve-step at which rank [`DYING_RANK`] dies.
const DEATH_STEP: u64 = 3;
const DYING_RANK: u32 = 2;

/// What one invocation resolved to, compared across replays.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    /// Bit pattern of the returned sum.
    Sum(u64),
    /// Typed refusal from a degraded server under `FailFast`/`Quorum`.
    Membership {
        epoch: u64,
        dead: Vec<u32>,
        survivors: Vec<u32>,
    },
    /// Client-side fast-fail: the circuit breaker was open.
    CircuitOpen(u32),
    Other(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct DeathReport {
    outcomes: Vec<Outcome>,
    retries: u64,
    fallbacks: u64,
    /// Epoch observed by `Proxy::rebind`, when the run exercises it.
    rebound_epoch: Option<u64>,
}

/// One thread-death run: a 4-thread server whose rank 2 dies at serve
/// step [`DEATH_STEP`], under `policy`, invoked `D_INVOCATIONS` times
/// by a 2-thread client using `mode`. With `breaker`, the client arms a
/// per-binding circuit breaker and, once it opens, rebinds past the
/// epoch fence and tries once more.
fn run_death_chaos(
    seed: u64,
    policy: DegradePolicy,
    mode: TransferMode,
    breaker: Option<u32>,
) -> Vec<DeathReport> {
    let world = World::new(LinkSpec::unlimited());

    let server_opts = OrbOptions {
        degrade: policy,
        frag_timeout: Some(std::time::Duration::from_millis(80)),
        ..Default::default()
    };
    let server = world.spawn_machine_with("server", D_SERVER_THREADS, server_opts, move |ctx| {
        // The death schedule must be installed before the first request
        // is served; clients bind only after `register` publishes the
        // reference, so this install is ordered before any invocation.
        if ctx.is_comm_thread() {
            ctx.host()
                .fabric()
                .install_faults(FaultPlan::new(seed).with_thread_death(DYING_RANK, DEATH_STEP));
        }
        ctx.rts().barrier();
        ctx.register("victim", Box::new(SumServant), vec![])
            .unwrap();
        // The dying rank's serve loop exits early (like shutdown); the
        // survivors keep serving until the client shuts the machine down.
        ctx.serve_forever().unwrap();
    });

    let client = world.spawn_machine("client", CLIENT_THREADS, move |ctx| {
        let mut proxy = ctx
            .spmd_bind("victim", Some("server"), Some(OBJ_TYPE))
            .unwrap();
        proxy.set_mode(mode).unwrap();
        if mode == TransferMode::MultiPort {
            // The invocation in flight when the death fires loses its
            // fragments; the retry probes the dead data port and demotes
            // to centralized transfer.
            proxy.set_retry(RetryPolicy {
                max_attempts: 4,
                base_backoff: std::time::Duration::from_millis(2),
                ..RetryPolicy::default()
            });
        }
        proxy.set_deadline(Some(std::time::Duration::from_secs(2)));
        if let Some(threshold) = breaker {
            proxy.set_circuit_breaker(threshold);
        }

        let invoke_once = |proxy: &Proxy, i: usize| -> Outcome {
            let mut seq = DSequence::<f64>::new(ctx.rts(), LEN, None).unwrap();
            let off = seq.local_range().start;
            for (j, x) in seq.local_data_mut().iter_mut().enumerate() {
                *x = i as f64 + (off + j) as f64 * 0.25;
            }
            let mut spec = RequestSpec::simple("sum").idempotent();
            spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];
            match proxy.invoke(&ctx, spec) {
                Ok(reply) => {
                    let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
                    Outcome::Sum(f64::decode(&mut r).unwrap().to_bits())
                }
                Err(PardisError::MembershipChange {
                    epoch,
                    dead,
                    survivors,
                }) => Outcome::Membership {
                    epoch,
                    dead,
                    survivors,
                },
                Err(PardisError::CircuitOpen { failures }) => Outcome::CircuitOpen(failures),
                Err(e) => Outcome::Other(e.to_string()),
            }
        };

        let mut outcomes: Vec<Outcome> =
            (0..D_INVOCATIONS).map(|i| invoke_once(&proxy, i)).collect();

        // Once the breaker has opened, rebind past the epoch fence (the
        // survivors republished the reference under the bumped epoch)
        // and prove the binding is live again: the next refusal is the
        // typed MembershipChange, not CircuitOpen.
        let rebound_epoch = if breaker.is_some() {
            let epoch = proxy.rebind(&ctx).unwrap();
            outcomes.push(invoke_once(&proxy, D_INVOCATIONS));
            Some(epoch)
        } else {
            None
        };

        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
        DeathReport {
            outcomes,
            retries: proxy.retry_count(),
            fallbacks: proxy.fallback_count(),
            rebound_epoch,
        }
    });

    let reports = client.join();
    server.join();
    reports
}

/// Expected sum for invocation `i` (unchanged by degradation: the
/// survivor remap still covers every element exactly once).
fn expected_sum(i: usize) -> u64 {
    (LEN as f64 * i as f64 + 0.25 * (LEN * (LEN - 1) / 2) as f64).to_bits()
}

#[test]
fn thread_death_survivors_completes_degraded() {
    let r1 = run_death_chaos(
        SEED,
        DegradePolicy::Survivors,
        TransferMode::Centralized,
        None,
    );
    let r2 = run_death_chaos(
        SEED,
        DegradePolicy::Survivors,
        TransferMode::Centralized,
        None,
    );
    assert_eq!(r1, r2, "survivor-mode run diverged between replays");

    for r in &r1 {
        // Every invocation — including those served after rank 2 died —
        // completed with the full sum: the remapped template still
        // covers the whole sequence.
        let want: Vec<Outcome> = (0..D_INVOCATIONS)
            .map(|i| Outcome::Sum(expected_sum(i)))
            .collect();
        assert_eq!(r.outcomes, want);
        assert_eq!(r.retries, 0, "centralized survivor mode needed no retry");
        assert_eq!(r.fallbacks, 0);
    }
}

#[test]
fn thread_death_failfast_returns_typed_membership_change() {
    let threshold = 2u32;
    let r1 = run_death_chaos(
        SEED,
        DegradePolicy::FailFast,
        TransferMode::Centralized,
        Some(threshold),
    );
    let r2 = run_death_chaos(
        SEED,
        DegradePolicy::FailFast,
        TransferMode::Centralized,
        Some(threshold),
    );
    assert_eq!(r1, r2, "fail-fast run diverged between replays");

    let refusal = Outcome::Membership {
        epoch: 1,
        dead: vec![DYING_RANK],
        survivors: (0..D_SERVER_THREADS as u32)
            .filter(|&r| r != DYING_RANK)
            .collect(),
    };
    for r in &r1 {
        assert_eq!(r.outcomes.len(), D_INVOCATIONS + 1);
        for (i, o) in r.outcomes.iter().enumerate() {
            let want = if i < DEATH_STEP as usize {
                // Healthy machine: full sums.
                Outcome::Sum(expected_sum(i))
            } else if i < (DEATH_STEP + threshold as u64) as usize {
                // Degraded machine, fail-fast policy: typed refusal
                // naming the epoch, the dead, and the survivors.
                refusal.clone()
            } else if i < D_INVOCATIONS {
                // Breaker open: fast-fail without touching the wire.
                Outcome::CircuitOpen(threshold)
            } else {
                // After rebind: breaker reset, refusal is typed again.
                refusal.clone()
            };
            assert_eq!(o, &want, "invocation {i}");
        }
        // The rebind crossed the epoch fence to the republished ref.
        assert_eq!(r.rebound_epoch, Some(1));
        assert_eq!(r.retries, 0, "MembershipChange must not be retried");
    }
}

#[test]
fn thread_death_multiport_demotes_and_completes() {
    let r1 = run_death_chaos(
        SEED,
        DegradePolicy::Survivors,
        TransferMode::MultiPort,
        None,
    );
    let r2 = run_death_chaos(
        SEED,
        DegradePolicy::Survivors,
        TransferMode::MultiPort,
        None,
    );
    assert_eq!(r1, r2, "multi-port death run diverged between replays");

    for r in &r1 {
        // The death costs the in-flight multi-port invocation its
        // fragments; the retry demotes to centralized transfer and every
        // invocation still completes with the full sum.
        let want: Vec<Outcome> = (0..D_INVOCATIONS)
            .map(|i| Outcome::Sum(expected_sum(i)))
            .collect();
        assert_eq!(r.outcomes, want);
        assert!(r.retries >= 1, "the death-step invocation must retry");
        // Every post-death invocation probed the dead data port and fell
        // back to centralized transfer.
        assert!(
            r.fallbacks >= (D_INVOCATIONS as u64).saturating_sub(DEATH_STEP + 1),
            "only {} fallbacks recorded",
            r.fallbacks
        );
    }
    // Collective agreement across client threads.
    for r in &r1 {
        assert_eq!(r.outcomes, r1[0].outcomes);
        assert_eq!(r.retries, r1[0].retries);
        assert_eq!(r.fallbacks, r1[0].fallbacks);
    }
}

// ---------------------------------------------------------------------
// Race-replay chaos (the `analyze` feature): the happens-before
// detector's findings are part of the run's observable outcome, so two
// replays of one seed must drain bit-for-bit identical `RaceReport`
// lists — clocks, buffer ids, request ids, and details included.

#[cfg(feature = "analyze")]
mod race_replay {
    use super::*;
    use pardis_core::race;

    const RACE_LEN: usize = 32;
    const RACE_INVOCATIONS: usize = 5;

    /// One run: multi-port `invoke_nb`, with the seed scheduling which
    /// invocations touch `local_data_mut` while the transfer interval
    /// is still open. `racy = false` only touches after `wait` — the
    /// false-positive control.
    fn run_race(seed: u64, racy: bool, client_name: &'static str) -> Vec<race::RaceReport> {
        let world = World::new(LinkSpec::unlimited());
        let server = world.spawn_machine("race-server", SERVER_THREADS, |ctx| {
            ctx.register("example", Box::new(SumServant), vec![])
                .unwrap();
            ctx.serve_forever().unwrap();
        });
        let client = world.spawn_machine(client_name, CLIENT_THREADS, move |ctx| {
            let mut proxy = ctx
                .spmd_bind("example", Some("race-server"), Some(OBJ_TYPE))
                .unwrap();
            proxy.set_mode(TransferMode::MultiPort).unwrap();
            let mut rng = seed;
            for i in 0..RACE_INVOCATIONS {
                let mut seq = DSequence::<f64>::new(ctx.rts(), RACE_LEN, None).unwrap();
                for x in seq.local_data_mut() {
                    *x = i as f64;
                }
                let mut spec = RequestSpec::simple("sum").idempotent();
                spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];
                let fut = proxy.invoke_nb(&ctx, spec).unwrap();
                // Same arithmetic on every thread: the touch schedule
                // is SPMD-uniform and a pure function of the seed.
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if racy && (i == 0 || rng >> 63 == 1) {
                    // The hazard: write while the transfer-read
                    // interval of the in-flight invocation is open.
                    seq.local_data_mut()[0] = -1.0;
                }
                fut.wait().unwrap();
                // Ordered: the invocation completed first.
                seq.local_data_mut()[0] = 0.0;
            }
            ctx.rts().barrier();
            if ctx.is_comm_thread() {
                ctx.send_shutdown(proxy.objref()).unwrap();
            }
        });
        client.join();
        server.join();
        race::take_reports(&format!("{client_name}/"))
    }

    #[test]
    fn racy_run_replays_bit_for_bit() {
        let r1 = run_race(SEED, true, "race-chaos-client");
        let r2 = run_race(SEED, true, "race-chaos-client");
        assert!(!r1.is_empty(), "seeded race was not detected");
        for r in &r1 {
            assert_eq!(r.code, "PA201");
            assert_eq!(r.first, pardis_core::AccessKind::TransferRead);
            assert_eq!(r.second, pardis_core::AccessKind::Write);
        }
        // Bit-for-bit: every field of every report, including both
        // vector clocks and the detail strings.
        assert_eq!(r1, r2, "race replay diverged");
    }

    #[test]
    fn clean_run_has_zero_findings() {
        let reports = run_race(SEED, false, "race-chaos-clean");
        assert!(reports.is_empty(), "false positives: {reports:#?}");
    }
}
