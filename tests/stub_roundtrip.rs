//! End-to-end tests through the **generated stubs**: the paper's §2.1
//! programming model exactly as an application developer would use it —
//! `_spmd_bind`/`_bind`, the four method variants, attributes,
//! exceptions, and both transfer methods.

use pardis::apps::diffusion::{hot_spot, reference_diffusion, DiffusionServant};
use pardis::prelude::*;
use pardis::stubs::diffusion::{diff_objectProxy, diff_objectSkeleton};
use pardis_net::ior::OpArgDist;

fn start_diffusion_server(
    world: &World,
    n: usize,
    dists: Vec<OpArgDist>,
) -> pardis_core::MachineHandle<()> {
    world.spawn_machine("HOST1", n, move |ctx| {
        diff_objectSkeleton::register(&ctx, "example", DiffusionServant::new(), dists.clone())
            .expect("register");
        ctx.serve_forever().expect("serve");
    })
}

#[test]
fn paper_scenario_through_generated_stubs() {
    // The verbatim §2.1 flow:
    //   diff_object* diff = diff_object::_spmd_bind("example", HOST1);
    //   diff->diffusion(64, my_diff_array);
    let world = World::new(LinkSpec::unlimited());
    let server = start_diffusion_server(&world, 4, vec![]);
    let client = world.spawn_machine("HOST2", 2, |ctx| {
        let diff = diff_objectProxy::_spmd_bind(&ctx, "example", Some("HOST1")).unwrap();

        let len = 512;
        let init = hot_spot(len);
        let mut my_diff_array = DSequence::<f64>::new(ctx.rts(), len, None).unwrap();
        let r = my_diff_array.local_range();
        my_diff_array
            .local_data_mut()
            .copy_from_slice(&init[r.clone()]);

        diff.diffusion(&ctx, 64, &mut my_diff_array).unwrap();

        let mut want = init.clone();
        reference_diffusion(&mut want, 64);
        for (got, exp) in my_diff_array.local_data().iter().zip(&want[r]) {
            assert!((got - exp).abs() < 1e-9);
        }
        if ctx.is_comm_thread() {
            ctx.send_shutdown(diff.proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn multiport_mode_through_stubs() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_diffusion_server(&world, 3, vec![]);
    let client = world.spawn_machine("HOST2", 2, |ctx| {
        let mut diff = diff_objectProxy::_spmd_bind(&ctx, "example", None).unwrap();
        diff._set_transfer_mode(TransferMode::MultiPort).unwrap();
        let mut arr = DSequence::<f64>::new(ctx.rts(), 300, None).unwrap();
        for x in arr.local_data_mut() {
            *x = 2.0;
        }
        diff.diffusion(&ctx, 5, &mut arr).unwrap();
        // Heat conservation: the stencil preserves the total.
        let heat = diff.total_heat(&ctx, &arr).unwrap();
        assert!((heat - 600.0).abs() < 1e-9);
        if ctx.is_comm_thread() {
            ctx.send_shutdown(diff.proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn nd_mapping_and_futures_through_stubs() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_diffusion_server(&world, 4, vec![]);
    let client = world.spawn_machine("HOST2", 1, |ctx| {
        let diff = diff_objectProxy::_bind(&ctx, "example", None).unwrap();

        // Non-distributed mapping: plain Vec through a 1-thread binding.
        let mut v: Vec<f64> = hot_spot(64);
        let before: f64 = v.iter().sum();
        diff.diffusion_nd(&ctx, 3, &mut v).unwrap();
        let after: f64 = v.iter().sum();
        assert!((before - after).abs() < 1e-9);

        // Non-blocking nd variant: the future resolves to the result
        // struct carrying the new sequence.
        let fut = diff.diffusion_nd_nb(&ctx, 2, &v).unwrap();
        let out = fut.wait().unwrap();
        let mut want = v.clone();
        reference_diffusion(&mut want, 2);
        assert_eq!(out.darray.len(), want.len());
        for (g, w) in out.darray.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }

        // Attribute: 3 + 2 steps executed so far.
        assert_eq!(diff._get_steps_completed(&ctx).unwrap(), 5);

        ctx.send_shutdown(diff.proxy.objref()).unwrap();
    });
    client.join();
    server.join();
}

#[test]
fn distributed_futures_through_stubs() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_diffusion_server(&world, 2, vec![]);
    let client = world.spawn_machine("HOST2", 2, |ctx| {
        let diff = diff_objectProxy::_spmd_bind(&ctx, "example", None).unwrap();
        let mut arr = DSequence::<f64>::new(ctx.rts(), 128, None).unwrap();
        for x in arr.local_data_mut() {
            *x = 1.0;
        }
        // Kick off, overlap, then collect — collectively on every
        // thread, as §2.1 requires for spmd-bound invocations.
        let fut = diff.diffusion_nb(&ctx, 4, &arr).unwrap();
        let local: f64 = arr.local_data().iter().sum();
        assert!(local > 0.0);
        let out = fut.wait().unwrap();
        assert_eq!(out.darray.local_len(), arr.local_len());
        // Uniform input is a fixed point of the stencil.
        for x in out.darray.local_data() {
            assert!((x - 1.0).abs() < 1e-12);
        }
        if ctx.is_comm_thread() {
            ctx.send_shutdown(diff.proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn idl_exception_through_stubs() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_diffusion_server(&world, 2, vec![]);
    let client = world.spawn_machine("HOST2", 1, |ctx| {
        let diff = diff_objectProxy::_bind(&ctx, "example", None).unwrap();
        // Negative timesteps raise diffusion_failed.
        let mut v = vec![0.0f64; 16];
        let err = diff.diffusion_nd(&ctx, -1, &mut v).unwrap_err();
        match err {
            PardisError::UserException(name) => {
                assert_eq!(name, pardis::stubs::diffusion::diffusion_failed::NAME);
            }
            other => panic!("expected user exception, got {other}"),
        }
        ctx.send_shutdown(diff.proxy.objref()).unwrap();
    });
    client.join();
    server.join();
}

#[test]
fn preregistered_proportions_through_stubs() {
    // The paper's §2.2 example: the server assigns
    // Proportions(2,4,2,4) to the diffusion array before registering.
    let world = World::new(LinkSpec::unlimited());
    let dists = vec![OpArgDist {
        op: "diffusion".into(),
        arg_index: 0,
        dist: DistSpec::Proportions(vec![2, 4, 2, 4]),
    }];
    let server = start_diffusion_server(&world, 4, dists);
    let client = world.spawn_machine("HOST2", 2, |ctx| {
        let mut diff = diff_objectProxy::_spmd_bind(&ctx, "example", None).unwrap();
        diff._set_transfer_mode(TransferMode::MultiPort).unwrap();
        let len = 240;
        let init = hot_spot(len);
        let mut arr = DSequence::<f64>::new(ctx.rts(), len, None).unwrap();
        let r = arr.local_range();
        arr.local_data_mut().copy_from_slice(&init[r.clone()]);
        diff.diffusion(&ctx, 7, &mut arr).unwrap();
        let mut want = init;
        reference_diffusion(&mut want, 7);
        for (g, w) in arr.local_data().iter().zip(&want[r]) {
            assert!((g - w).abs() < 1e-9);
        }
        if ctx.is_comm_thread() {
            ctx.send_shutdown(diff.proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn two_sequential_clients_one_object() {
    // Objects persist across clients: a second client binds after the
    // first finished and sees the accumulated attribute state.
    let world = World::new(LinkSpec::unlimited());
    let server = start_diffusion_server(&world, 2, vec![]);
    let c1 = world.spawn_machine("C1", 1, |ctx| {
        let diff = diff_objectProxy::_bind(&ctx, "example", None).unwrap();
        let mut v = vec![1.0f64; 32];
        diff.diffusion_nd(&ctx, 10, &mut v).unwrap();
    });
    c1.join();
    let c2 = world.spawn_machine("C2", 1, |ctx| {
        let diff = diff_objectProxy::_bind(&ctx, "example", None).unwrap();
        let steps = diff._get_steps_completed(&ctx).unwrap();
        assert_eq!(steps, 10);
        ctx.send_shutdown(diff.proxy.objref()).unwrap();
    });
    c2.join();
    server.join();
}
