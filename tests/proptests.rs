//! Property-based tests over the core invariants: CDR round-trips,
//! distribution-template algebra, message framing, and
//! distributed-sequence redistribution.

use bytes::Bytes;
use pardis_cdr::{CdrReader, CdrWriter, Decode, Encode, Endian};
use pardis_core::{DSequence, DistTempl, Proportions};
use pardis_net::giop::{GiopMessage, RequestHeader, TransferMode};
use pardis_net::HostId;
use pardis_rts::Domain;
use proptest::prelude::*;

fn endian_strategy() -> impl Strategy<Value = Endian> {
    prop_oneof![Just(Endian::Big), Just(Endian::Little)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cdr_primitives_roundtrip(
        b in any::<bool>(),
        x8 in any::<u8>(),
        x16 in any::<i16>(),
        x32 in any::<i32>(),
        x64 in any::<u64>(),
        f in any::<f64>(),
        s in "[ -~]{0,64}", // printable ASCII
        endian in endian_strategy(),
    ) {
        let mut w = CdrWriter::new(endian);
        b.encode(&mut w).unwrap();
        x8.encode(&mut w).unwrap();
        x16.encode(&mut w).unwrap();
        x32.encode(&mut w).unwrap();
        x64.encode(&mut w).unwrap();
        f.encode(&mut w).unwrap();
        s.encode(&mut w).unwrap();
        let buf = w.into_bytes();
        let mut r = CdrReader::new(&buf, endian);
        prop_assert_eq!(bool::decode(&mut r).unwrap(), b);
        prop_assert_eq!(u8::decode(&mut r).unwrap(), x8);
        prop_assert_eq!(i16::decode(&mut r).unwrap(), x16);
        prop_assert_eq!(i32::decode(&mut r).unwrap(), x32);
        prop_assert_eq!(u64::decode(&mut r).unwrap(), x64);
        let back = f64::decode(&mut r).unwrap();
        prop_assert!(back == f || (back.is_nan() && f.is_nan()));
        prop_assert_eq!(String::decode(&mut r).unwrap(), s);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn cdr_f64_bulk_roundtrip(
        data in prop::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..512),
        endian in endian_strategy(),
    ) {
        let mut w = CdrWriter::new(endian);
        w.put_f64_slice(&data);
        let buf = w.into_bytes();
        let mut r = CdrReader::new(&buf, endian);
        let mut out = Vec::new();
        r.get_f64_slice(data.len(), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn cdr_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes may fail but must not panic.
        let mut r = CdrReader::new(&bytes, Endian::native());
        let _ = Vec::<String>::decode(&mut r);
        let mut r = CdrReader::new(&bytes, Endian::native());
        let _ = pardis_cdr::TypeCode::decode(&mut r);
        let _ = GiopMessage::decode(&Bytes::from(bytes));
    }

    #[test]
    fn block_template_partitions(len in 0usize..10_000, n in 1usize..32) {
        let t = DistTempl::block(len, n);
        prop_assert_eq!(t.len(), len);
        prop_assert_eq!(t.counts().iter().sum::<usize>(), len);
        // Counts differ by at most one (uniform blockwise).
        let min = t.counts().iter().min().unwrap();
        let max = t.counts().iter().max().unwrap();
        prop_assert!(max - min <= 1);
        // Ownership is exhaustive and consistent.
        for idx in (0..len).step_by((len / 17).max(1)) {
            let (owner, local) = t.owner_of(idx).unwrap();
            prop_assert!(t.range(owner).contains(&idx));
            prop_assert_eq!(t.offset(owner) + local, idx);
        }
    }

    #[test]
    fn proportional_template_partitions(
        len in 0usize..5_000,
        weights in prop::collection::vec(0u32..10, 1..16)
            .prop_filter("some weight", |w| w.iter().any(|&x| x > 0)),
    ) {
        let t = DistTempl::proportional(len, &Proportions::new(weights.clone()));
        prop_assert_eq!(t.len(), len);
        // A zero-weight thread owns nothing... unless largest-remainder
        // assigns leftovers; with zero weight the remainder is zero, so
        // truly nothing.
        for (i, &w) in weights.iter().enumerate() {
            if w == 0 {
                prop_assert_eq!(t.count(i), 0);
            }
        }
    }

    #[test]
    fn transfers_partition_every_element(
        len in 1usize..4_000,
        src_n in 1usize..9,
        dst_n in 1usize..9,
    ) {
        let src = DistTempl::block(len, src_n);
        let dst = DistTempl::block(len, dst_n);
        let mut covered = vec![0u32; len];
        for s in 0..src_n {
            for (d, range) in src.transfers_to(s, &dst) {
                // Every fragment stays within both owners' ranges.
                prop_assert!(src.range(s).start <= range.start && range.end <= src.range(s).end);
                prop_assert!(dst.range(d).start <= range.start && range.end <= dst.range(d).end);
                for i in range {
                    covered[i] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn transfers_partition_mixed_templates(
        len in 1usize..3_000,
        src_weights in prop::collection::vec(0u32..7, 1..8)
            .prop_filter("some weight", |w| w.iter().any(|&x| x > 0)),
        dst_weights in prop::collection::vec(0u32..7, 1..8)
            .prop_filter("some weight", |w| w.iter().any(|&x| x > 0)),
        src_block in any::<bool>(),
        dst_block in any::<bool>(),
    ) {
        // The multi-port overlap algebra must partition the sequence for
        // ANY pair of templates, not just uniform blockwise ones — mixed
        // block/proportional pairs model reconfiguration between machines
        // of different shapes (paper §3.3).
        let src = if src_block {
            DistTempl::block(len, src_weights.len())
        } else {
            DistTempl::proportional(len, &Proportions::new(src_weights.clone()))
        };
        let dst = if dst_block {
            DistTempl::block(len, dst_weights.len())
        } else {
            DistTempl::proportional(len, &Proportions::new(dst_weights.clone()))
        };
        let mut covered = vec![0u32; len];
        for s in 0..src.nthreads() {
            for (d, range) in src.transfers_to(s, &dst) {
                prop_assert!(!range.is_empty(), "empty fragment emitted");
                prop_assert!(src.range(s).start <= range.start && range.end <= src.range(s).end);
                prop_assert!(dst.range(d).start <= range.start && range.end <= dst.range(d).end);
                for i in range {
                    covered[i] += 1;
                }
            }
        }
        // Exactly-once delivery: every element is covered by one and
        // only one fragment.
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn incoming_counts_agree_with_transfers(
        len in 1usize..2_000,
        src_n in 1usize..8,
        dst_n in 1usize..8,
    ) {
        let src = DistTempl::block(len, src_n);
        let dst = DistTempl::block(len, dst_n);
        for d in 0..dst_n {
            let expected: usize = (0..src_n)
                .map(|s| src.transfers_to(s, &dst).iter().filter(|(t, _)| *t == d).count())
                .sum();
            prop_assert_eq!(dst.incoming_count(d, &src), expected);
        }
    }

    #[test]
    fn resize_preserves_prefix_ownership(
        counts in prop::collection::vec(0usize..50, 1..8),
        delta in -40i64..40,
    ) {
        let t = DistTempl::from_counts(counts);
        let new_len = (t.len() as i64 + delta).max(0) as usize;
        let r = t.resized(new_len);
        prop_assert_eq!(r.len(), new_len);
        prop_assert_eq!(r.nthreads(), t.nthreads());
        // Elements below min(old, new) keep their owners.
        let keep = t.len().min(new_len);
        for idx in (0..keep).step_by((keep / 13).max(1)) {
            prop_assert_eq!(t.owner_of(idx).unwrap(), r.owner_of(idx).unwrap());
        }
    }

    #[test]
    fn request_header_roundtrips(
        request_id in any::<u64>(),
        object in "[a-z]{1,12}",
        op in "[a-z_]{1,12}",
        response in any::<bool>(),
        host in any::<u32>(),
        port in any::<u32>(),
        threads in 1u32..64,
        ports in prop::collection::vec(any::<u32>(), 0..8),
        mp in any::<bool>(),
        sc in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(any::<u8>(), 0..24)),
            0..4,
        ),
        endian in endian_strategy(),
    ) {
        let h = RequestHeader {
            request_id,
            object_name: object,
            operation: op,
            response_expected: response,
            reply_host: HostId(host),
            reply_port: port,
            mode: if mp { TransferMode::MultiPort } else { TransferMode::Centralized },
            client_threads: threads,
            client_data_ports: ports,
            service_context: sc
                .into_iter()
                .map(|(id, blob)| (id, Bytes::from(blob)))
                .collect(),
        };
        let msg = GiopMessage::Request(h, Bytes::from(vec![1, 2, 3]));
        let wire = msg.encode(endian).unwrap();
        prop_assert_eq!(GiopMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn sim_layout_agrees_with_core_templates(
        len in 0u64..5_000,
        n in 1usize..12,
    ) {
        // The simulator's standalone block math must match the ORB's.
        let sim = pardis_sim::block::Layout::block(len, n);
        let core = DistTempl::block(len as usize, n);
        for t in 0..n {
            prop_assert_eq!(sim.count(t) as usize, core.count(t));
        }
    }

    #[test]
    fn sim_proportional_agrees_with_core(
        len in 0u64..3_000,
        weights in prop::collection::vec(0u32..9, 1..10)
            .prop_filter("some weight", |w| w.iter().any(|&x| x > 0)),
    ) {
        let sim = pardis_sim::block::Layout::proportional(len, &weights);
        let core = DistTempl::proportional(len as usize, &Proportions::new(weights));
        for t in 0..core.nthreads() {
            prop_assert_eq!(sim.count(t) as usize, core.count(t));
        }
    }
}

// Collective properties run fewer cases: each case spins a thread
// domain.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn redistribute_is_content_preserving(
        len in 1usize..400,
        threads in 1usize..5,
        weights in prop::collection::vec(1u32..5, 1..5),
    ) {
        let wlen = weights.len();
        Domain::run(threads.max(wlen), move |ep| { let ep = &ep;
            let n = ep.size();
            let mut s = DSequence::<f64>::new(ep, len, None).unwrap();
            let off = s.local_range().start;
            for (i, x) in s.local_data_mut().iter_mut().enumerate() {
                *x = (off + i) as f64;
            }
            let want: Vec<f64> = (0..len).map(|i| i as f64).collect();
            // Pad weights up to the domain size.
            let mut w = weights.clone();
            while w.len() < n {
                w.push(1);
            }
            let t = DistTempl::proportional(len, &Proportions::new(w));
            s.redistribute(ep, t).unwrap();
            assert_eq!(s.to_global(ep).unwrap(), want);
            s.redistribute(ep, DistTempl::block(len, n)).unwrap();
            assert_eq!(s.to_global(ep).unwrap(), want);
        });
    }

    #[test]
    fn redistribute_roundtrip_chain_preserves_content(
        len in 1usize..300,
        threads in 2usize..5,
        chain in prop::collection::vec(prop::collection::vec(1u32..6, 1..5), 1..4),
    ) {
        // A whole chain of redistributions through arbitrary proportional
        // templates, ending back at blockwise, must be the identity on
        // content.
        Domain::run(threads, move |ep| { let ep = &ep;
            let n = ep.size();
            let mut s = DSequence::<f64>::new(ep, len, None).unwrap();
            let off = s.local_range().start;
            for (i, x) in s.local_data_mut().iter_mut().enumerate() {
                *x = (off + i) as f64 * 0.5;
            }
            let want: Vec<f64> = (0..len).map(|i| i as f64 * 0.5).collect();
            for weights in &chain {
                let mut w = weights.clone();
                while w.len() < n {
                    w.push(1);
                }
                w.truncate(n);
                let t = DistTempl::proportional(len, &Proportions::new(w));
                s.redistribute(ep, t).unwrap();
                assert_eq!(s.to_global(ep).unwrap(), want);
            }
            s.redistribute(ep, DistTempl::block(len, n)).unwrap();
            assert_eq!(s.to_global(ep).unwrap(), want);
            // Back to blockwise: layout equals a freshly built template.
            assert_eq!(s.templ().counts(), DistTempl::block(len, n).counts());
        });
    }

    #[test]
    fn redistribute_onto_preserves_values(
        len in 1usize..300,
        threads in 2usize..5,
        survivor_bits in any::<u32>(),
    ) {
        // Evacuating onto any non-empty survivor subset preserves every
        // value and the total length; the excluded threads end up
        // owning nothing.
        Domain::run(threads, move |ep| { let ep = &ep;
            let n = ep.size();
            let mut survivors: Vec<usize> =
                (0..n).filter(|&r| (survivor_bits >> r) & 1 == 1).collect();
            if survivors.is_empty() {
                survivors.push(0);
            }
            let mut s = DSequence::<f64>::new(ep, len, None).unwrap();
            let off = s.local_range().start;
            for (i, x) in s.local_data_mut().iter_mut().enumerate() {
                *x = (off + i) as f64 * 1.5;
            }
            let want: Vec<f64> = (0..len).map(|i| i as f64 * 1.5).collect();
            s.redistribute_onto(ep, &survivors).unwrap();
            assert_eq!(s.len(), len);
            assert_eq!(s.to_global(ep).unwrap(), want);
            for r in (0..n).filter(|r| !survivors.contains(r)) {
                assert_eq!(s.templ().count(r), 0, "excluded rank {r} still owns data");
            }
        });
    }

    #[test]
    fn redistribute_onto_then_shrink_discards_exactly_the_tail(
        len in 2usize..200,
        threads in 2usize..5,
        survivor_bits in any::<u32>(),
        keep_num in 1usize..200,
    ) {
        // Evacuation composes with the paper's length semantics: a
        // shrink after `redistribute_onto` discards exactly the tail,
        // and the prefix keeps the evacuated values.
        Domain::run(threads, move |ep| { let ep = &ep;
            let n = ep.size();
            let mut survivors: Vec<usize> =
                (0..n).filter(|&r| (survivor_bits >> r) & 1 == 1).collect();
            if survivors.is_empty() {
                survivors.push(n - 1);
            }
            let keep = keep_num.min(len - 1);
            let mut s = DSequence::<f64>::new(ep, len, None).unwrap();
            let off = s.local_range().start;
            for (i, x) in s.local_data_mut().iter_mut().enumerate() {
                *x = (off + i) as f64 - 7.0;
            }
            s.redistribute_onto(ep, &survivors).unwrap();
            s.set_len(ep, keep).unwrap();
            let g = s.to_global(ep).unwrap();
            assert_eq!(g.len(), keep);
            for (i, &x) in g.iter().enumerate() {
                assert_eq!(x, i as f64 - 7.0);
            }
            // The shrunken layout still starves the evacuated ranks.
            for r in (0..n).filter(|r| !survivors.contains(r)) {
                assert_eq!(s.templ().count(r), 0);
            }
        });
    }

    #[test]
    fn set_len_then_global_is_consistent(
        len in 1usize..200,
        new_len in 0usize..300,
        threads in 1usize..5,
    ) {
        Domain::run(threads, move |ep| { let ep = &ep;
            let mut s = DSequence::<f64>::new(ep, len, None).unwrap();
            let off = s.local_range().start;
            for (i, x) in s.local_data_mut().iter_mut().enumerate() {
                *x = (off + i) as f64;
            }
            s.set_len(ep, new_len).unwrap();
            let g = s.to_global(ep).unwrap();
            assert_eq!(g.len(), new_len);
            // Prefix preserved, growth default-initialized.
            for (i, &x) in g.iter().enumerate() {
                if i < len {
                    assert_eq!(x, i as f64);
                } else {
                    assert_eq!(x, 0.0);
                }
            }
        });
    }
}
