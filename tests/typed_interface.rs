//! End-to-end tests of the full IDL type system through the generated
//! `collector` stubs: structs (including sequence members), enums,
//! typedef chains, out/inout scalars, unsigned 64-bit integers, octet
//! sequences, oneway operations, attributes, and IDL constants.

use pardis::apps::collector::CollectorServant;
use pardis::prelude::*;
use pardis::stubs::types::typetest::{
    collectorProxy, collectorSkeleton, Mode, Sample, ENABLED, GREETING, MAGIC, SCALE,
};

fn with_collector<F>(f: F)
where
    F: Fn(OrbCtx, collectorProxy) + Send + Sync + 'static,
{
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("server", 1, |ctx| {
        collectorSkeleton::register(&ctx, "collector", CollectorServant::new(), vec![])
            .expect("register");
        ctx.serve_forever().expect("serve");
    });
    let client = world.spawn_machine("client", 1, move |ctx| {
        let proxy = collectorProxy::_bind(&ctx, "collector", None).expect("bind");
        f(ctx, proxy);
    });
    client.join();
    server.join();
}

#[test]
fn idl_constants_materialize() {
    assert_eq!(MAGIC, 42);
    assert_eq!(SCALE, 1.5);
    assert_eq!(GREETING, "pardis");
    #[allow(clippy::assertions_on_constants)]
    const _: () = assert!(ENABLED);
}

#[test]
fn structs_and_sequences_round_trip() {
    with_collector(|ctx, proxy| {
        for i in 0..5 {
            let n = proxy
                .add(
                    &ctx,
                    &Sample {
                        id: i,
                        value: i as f64 * 1.5,
                        valid: true,
                    },
                )
                .unwrap();
            assert_eq!(n, i + 1);
        }
        // Sequence-of-structs through a typedef chain.
        let all = proxy.dump(&ctx).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all[3].id, 3);
        assert_eq!(all[3].value, 4.5);
        // Struct return with a sequence member.
        let batch = proxy.summarize(&ctx, "run-1").unwrap();
        assert_eq!(batch.label, "run-1");
        assert_eq!(batch.values, vec![0.0, 1.5, 3.0, 4.5, 6.0]);
        ctx.send_shutdown(proxy.proxy.objref()).unwrap();
    });
}

#[test]
fn out_and_inout_scalars() {
    with_collector(|ctx, proxy| {
        proxy
            .add(
                &ctx,
                &Sample {
                    id: 1,
                    value: 10.0,
                    valid: true,
                },
            )
            .unwrap();
        proxy
            .add(
                &ctx,
                &Sample {
                    id: 2,
                    value: 20.0,
                    valid: true,
                },
            )
            .unwrap();
        let mut running_mean = 5.0; // inout
        let mut count = 0i32; // out
        proxy.stats(&ctx, &mut running_mean, &mut count).unwrap();
        assert_eq!(count, 2);
        // Server blends its mean (15.0) with ours (5.0).
        assert_eq!(running_mean, 10.0);
        ctx.send_shutdown(proxy.proxy.objref()).unwrap();
    });
}

#[test]
fn enums_round_trip() {
    with_collector(|ctx, proxy| {
        assert_eq!(proxy.mode(&ctx).unwrap(), Mode::SAFE);
        proxy.set_mode(&ctx, Mode::TURBO).unwrap();
        assert_eq!(proxy.mode(&ctx).unwrap(), Mode::TURBO);
        ctx.send_shutdown(proxy.proxy.objref()).unwrap();
    });
}

#[test]
fn u64_checksum_and_octet_sequences() {
    with_collector(|ctx, proxy| {
        let data: Vec<u8> = (0..=255).collect();
        let remote = proxy.checksum(&ctx, &data).unwrap();
        // Same FNV-1a locally.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &data {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        assert_eq!(remote, h);
        ctx.send_shutdown(proxy.proxy.objref()).unwrap();
    });
}

#[test]
fn oneway_reset_and_attributes() {
    with_collector(|ctx, proxy| {
        proxy
            .add(
                &ctx,
                &Sample {
                    id: 1,
                    value: 1.0,
                    valid: true,
                },
            )
            .unwrap();
        assert_eq!(proxy._get_total_added(&ctx).unwrap(), 1);

        // Oneway: returns immediately; state change observed on the
        // next (ordered) two-way call.
        proxy.reset(&ctx).unwrap();
        assert!(proxy.dump(&ctx).unwrap().is_empty());
        // total_added survives a reset (it counts adds, not holdings).
        assert_eq!(proxy._get_total_added(&ctx).unwrap(), 1);

        // Writable attribute.
        assert_eq!(proxy._get_threshold(&ctx).unwrap(), 0.5);
        proxy._set_threshold(&ctx, 0.9).unwrap();
        assert_eq!(proxy._get_threshold(&ctx).unwrap(), 0.9);
        ctx.send_shutdown(proxy.proxy.objref()).unwrap();
    });
}

#[test]
fn exception_on_invalid_sample() {
    with_collector(|ctx, proxy| {
        let err = proxy
            .add(
                &ctx,
                &Sample {
                    id: 9,
                    value: 0.0,
                    valid: false,
                },
            )
            .unwrap_err();
        match err {
            PardisError::UserException(name) => assert_eq!(name, "bad_sample"),
            other => panic!("expected bad_sample, got {other}"),
        }
        // The object remains usable after an exception.
        assert!(proxy.dump(&ctx).unwrap().is_empty());
        ctx.send_shutdown(proxy.proxy.objref()).unwrap();
    });
}

#[test]
fn nb_variant_on_plain_interface() {
    // Even without distributed args every operation gets an `_nb`
    // variant returning a future.
    with_collector(|ctx, proxy| {
        proxy
            .add(
                &ctx,
                &Sample {
                    id: 7,
                    value: 7.0,
                    valid: true,
                },
            )
            .unwrap();
        let fut = proxy.dump_nb(&ctx).unwrap();
        let out = fut.wait().unwrap();
        assert_eq!(out.ret.len(), 1);
        assert_eq!(out.ret[0].id, 7);
        ctx.send_shutdown(proxy.proxy.objref()).unwrap();
    });
}
